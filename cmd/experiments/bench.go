package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"dnstime"
	"dnstime/internal/obs"
)

// benchEntry is one scenario's campaign benchmark result: throughput plus
// the headline aggregate statistics the campaign reported.
type benchEntry struct {
	// Scenario names the registered scenario.
	Scenario string `json:"scenario"`
	// Runs and Errors count the campaign's seeded runs.
	Runs   int `json:"runs"`
	Errors int `json:"errors"`
	// Seconds is the campaign wall-clock time; RunsPerSec the throughput.
	Seconds    float64 `json:"seconds"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// SuccessRatePct is present for scenarios with a binary outcome.
	SuccessRatePct *float64 `json:"success_rate_pct,omitempty"`
	// MetricMeans holds every aggregate metric mean, keyed by name.
	MetricMeans map[string]float64 `json:"metric_means,omitempty"`
	// PhaseSeconds breaks the campaign's engine time down by execution
	// phase (setup/reset/run/fold, summed across workers — the run phase
	// exceeds Seconds whenever workers overlap). The baseline comparator
	// checks only the fields above, so older baselines stay compatible.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// benchWorkersRow is one whole-registry timing at an alternative worker
// count: the scaling companion to the document's main (per-scenario) pass.
type benchWorkersRow struct {
	Workers         int     `json:"workers"`
	TotalSeconds    float64 `json:"total_seconds"`
	TotalRunsPerSec float64 `json:"total_runs_per_sec"`
}

// benchDoc is the bench subcommand's JSON document (BENCH_4.json in CI):
// one campaign benchmark entry per scenario, in registry order, plus the
// run configuration — the repo's performance trajectory across PRs.
type benchDoc struct {
	// Seeds, Workers and Fast echo the benchmark configuration.
	Seeds   int  `json:"seeds"`
	Workers int  `json:"workers"`
	Fast    bool `json:"fast,omitempty"`
	// GoGC records the collector target the run used (the -gogc flag).
	GoGC int `json:"gogc,omitempty"`
	// GoMaxProcs records the parallelism available to the run.
	GoMaxProcs int `json:"gomaxprocs"`
	// TotalSeconds is the wall-clock time across all campaigns.
	TotalSeconds float64 `json:"total_seconds"`
	// TotalRunsPerSec is the whole-registry throughput.
	TotalRunsPerSec float64 `json:"total_runs_per_sec"`
	// Scenarios holds one entry per benchmarked scenario.
	Scenarios []benchEntry `json:"scenarios"`
	// WorkersRows holds extra whole-registry passes at other worker
	// counts (the -workers-rows flag) — the document's scaling record.
	WorkersRows []benchWorkersRow `json:"workers_rows,omitempty"`
}

// benchConfig holds the parsed bench-subcommand flags.
type benchConfig struct {
	seeds       int
	workers     int
	workersRows string
	gogc        int
	fast        bool
	only        string
	out         string
	compare     string
	in          string
	tolerance   float64
	driftOnly   bool
	cpuprofile  string
	memprofile  string
}

// benchFlagSet declares the bench flag surface (the README command
// checker parses documented commands against it).
func benchFlagSet(cfg *benchConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.IntVar(&cfg.seeds, "seeds", 16, "independent seeds per scenario")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.workersRows, "workers-rows", "", "comma-separated extra worker counts; each adds a whole-registry timing row to the document")
	fs.IntVar(&cfg.gogc, "gogc", 400, "GC target percentage for the benchmark process (0 leaves the runtime default); campaigns are an allocation-lean batch workload, so the stock 100 spends a measurable slice of each run in collector write barriers")
	fs.BoolVar(&cfg.fast, "fast", false, "shrink the slowest scenarios' populations")
	fs.StringVar(&cfg.only, "only", "", "comma-separated scenario subset (default: all)")
	fs.StringVar(&cfg.out, "o", "", "write the JSON document to this file (default: stdout)")
	fs.StringVar(&cfg.compare, "compare", "", "baseline JSON document; exit non-zero on throughput regression or headline-metric drift")
	fs.StringVar(&cfg.in, "in", "", "compare this JSON document instead of running the benchmarks (needs -compare)")
	fs.Float64Var(&cfg.tolerance, "tolerance", 0.15, "allowed fractional runs/sec regression against -compare")
	fs.BoolVar(&cfg.driftOnly, "drift-only", false, "with -compare: check only deterministic headline-metric drift, not runs/sec (for cross-machine gates)")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the benchmark runs to this file (go tool pprof)")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile taken after the benchmark runs to this file")
	return fs
}

// runBench is the bench subcommand: run every selected scenario as one
// multi-seed campaign through the Engine, time it, and emit a JSON
// document of runs/sec plus headline metrics. CI runs this once per push
// and uploads the document as the BENCH_4.json artifact, so campaign
// throughput is tracked alongside correctness.
func runBench(ctx context.Context, argv []string, w io.Writer) error {
	var cfg benchConfig
	fs := benchFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (scenarios are selected with -only name,...)", fs.Arg(0))
	}
	if cfg.seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", cfg.seeds)
	}
	// The negated form catches NaN too: `NaN < 0` and `NaN >= 1` are both
	// false, so the naive two-sided check would wave -tolerance NaN through
	// and disable every regression comparison below it.
	if !(cfg.tolerance >= 0 && cfg.tolerance < 1) {
		return fmt.Errorf("-tolerance must be a finite fraction in [0, 1) (got %v)", cfg.tolerance)
	}
	if cfg.in != "" {
		// Pure document-vs-document mode: the trajectory check CI runs over
		// the committed BENCH_<n>.json files, with no fresh benchmark run.
		if cfg.compare == "" {
			return fmt.Errorf("-in needs -compare (a document to check against)")
		}
		current, err := loadBenchDoc(cfg.in)
		if err != nil {
			return err
		}
		return compareAgainstBaseline(current, cfg, nil, w)
	}
	names, err := selectScenarios(cfg.only)
	if err != nil {
		return err
	}
	rows, err := parseWorkersRows(cfg.workersRows)
	if err != nil {
		return err
	}
	if cfg.gogc > 0 {
		debug.SetGCPercent(cfg.gogc)
	}
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if cfg.memprofile != "" {
		defer func() {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench -memprofile:", err)
			}
		}()
	}

	doc := benchDoc{
		Seeds:      cfg.seeds,
		Workers:    cfg.workers,
		Fast:       cfg.fast,
		GoGC:       cfg.gogc,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if doc.Workers == 0 {
		doc.Workers = doc.GoMaxProcs
	}
	totalRuns := 0
	start := time.Now()
	for _, name := range names {
		eng := dnstime.NewEngine(
			dnstime.WithSeeds(cfg.seeds),
			dnstime.WithWorkers(cfg.workers),
			dnstime.WithFast(cfg.fast),
		)
		phasesBefore := obs.PhaseSnapshot()
		campaignStart := time.Now()
		agg, err := eng.Run(ctx, name)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		elapsed := time.Since(campaignStart).Seconds()
		phases := phaseDelta(phasesBefore, obs.PhaseSnapshot())
		entry := benchEntry{
			Scenario:   name,
			Runs:       agg.Runs,
			Errors:     agg.Errors,
			Seconds:    elapsed,
			RunsPerSec: float64(agg.Runs) / elapsed,
		}
		if agg.OutcomeRuns > 0 {
			rate := agg.SuccessRate
			entry.SuccessRatePct = &rate
		}
		if len(agg.Metrics) > 0 {
			entry.MetricMeans = make(map[string]float64, len(agg.Metrics))
			for _, m := range agg.Metrics {
				entry.MetricMeans[m.Name] = m.Mean
			}
		}
		entry.PhaseSeconds = phases
		doc.Scenarios = append(doc.Scenarios, entry)
		totalRuns += agg.Runs
		fmt.Fprintf(os.Stderr, "bench %-16s %3d runs in %6.2fs (%.1f runs/sec)\n",
			name, agg.Runs, elapsed, entry.RunsPerSec)
	}
	doc.TotalSeconds = time.Since(start).Seconds()
	doc.TotalRunsPerSec = float64(totalRuns) / doc.TotalSeconds
	for _, workers := range rows {
		row, err := benchWorkersPass(ctx, names, cfg, workers)
		if err != nil {
			return err
		}
		doc.WorkersRows = append(doc.WorkersRows, row)
		fmt.Fprintf(os.Stderr, "bench -workers %-2d     %3d scenarios in %6.2fs (%.1f runs/sec)\n",
			workers, len(names), row.TotalSeconds, row.TotalRunsPerSec)
	}

	out := w
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if cfg.compare != "" {
		// A -only run benchmarks a subset: compare only those scenarios
		// (and skip the whole-registry total) instead of reporting every
		// unselected scenario as disappeared.
		var subset map[string]bool
		if cfg.only != "" {
			subset = make(map[string]bool, len(names))
			for _, name := range names {
				subset[name] = true
			}
		}
		return compareAgainstBaseline(doc, cfg, subset, w)
	}
	return nil
}

// phaseDelta subtracts two obs.PhaseSnapshot readings, keeping only the
// phases that accumulated time in between — one campaign's share of the
// process-wide phase counters.
func phaseDelta(before, after map[string]float64) map[string]float64 {
	var delta map[string]float64
	for phase, v := range after {
		if d := v - before[phase]; d > 0 {
			if delta == nil {
				delta = map[string]float64{}
			}
			delta[phase] = d
		}
	}
	return delta
}

// parseWorkersRows parses the -workers-rows comma list into worker counts.
func parseWorkersRows(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var rows []int
	for _, field := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-workers-rows: %q is not a positive worker count", field)
		}
		rows = append(rows, n)
	}
	return rows, nil
}

// benchWorkersPass times one whole-registry pass at the given worker count
// — the scaling rows of the bench document. Only the totals are recorded:
// the per-scenario entries of the main pass already pin the deterministic
// headline metrics, which cannot depend on worker count.
func benchWorkersPass(ctx context.Context, names []string, cfg benchConfig, workers int) (benchWorkersRow, error) {
	totalRuns := 0
	start := time.Now()
	for _, name := range names {
		eng := dnstime.NewEngine(
			dnstime.WithSeeds(cfg.seeds),
			dnstime.WithWorkers(workers),
			dnstime.WithFast(cfg.fast),
		)
		agg, err := eng.Run(ctx, name)
		if err != nil {
			return benchWorkersRow{}, fmt.Errorf("bench -workers %d %s: %w", workers, name, err)
		}
		totalRuns += agg.Runs
	}
	elapsed := time.Since(start).Seconds()
	return benchWorkersRow{
		Workers:         workers,
		TotalSeconds:    elapsed,
		TotalRunsPerSec: float64(totalRuns) / elapsed,
	}, nil
}

// loadBenchDoc reads a bench JSON document from disk.
func loadBenchDoc(path string) (benchDoc, error) {
	var doc benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("bench document %s does not parse: %w", path, err)
	}
	return doc, nil
}

// compareAgainstBaseline loads the -compare baseline, reports every
// problem on stderr and returns an error when any was found — the CI
// trajectory gate. A non-nil subset restricts the comparison to those
// scenarios (the -only case).
func compareAgainstBaseline(current benchDoc, cfg benchConfig, subset map[string]bool, w io.Writer) error {
	baseline, err := loadBenchDoc(cfg.compare)
	if err != nil {
		return err
	}
	problems := compareBenchDocs(current, baseline, compareOptions{
		tolerance: cfg.tolerance,
		driftOnly: cfg.driftOnly,
		subset:    subset,
	})
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "bench compare:", p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d regression(s) against baseline %s", len(problems), cfg.compare)
	}
	fmt.Fprintf(w, "bench compare: no regression against %s (tolerance %.0f%%)\n",
		cfg.compare, 100*cfg.tolerance)
	return nil
}

// benchNoiseFloor is the smallest baseline campaign wall-clock (seconds)
// whose per-scenario throughput is enforced: sub-floor campaigns finish
// in a few timer quanta, where runs/sec is scheduling noise rather than
// a performance signal. Their headline metrics are still checked.
const benchNoiseFloor = 0.1

// driftTolerance bounds the relative headline-metric difference treated
// as "the same number": campaign metrics are deterministic per seed, so
// anything beyond float formatting noise is a behaviour change.
const driftTolerance = 1e-9

// compareOptions tunes one baseline comparison.
type compareOptions struct {
	// tolerance is the allowed fractional runs/sec regression.
	tolerance float64
	// driftOnly skips the runs/sec checks — the machine-independent
	// mode: headline metrics are deterministic per seed, throughput is
	// not, so a gate comparing documents from different hardware checks
	// drift only.
	driftOnly bool
	// subset, when non-nil, restricts the comparison to these scenarios
	// and skips the whole-registry total (the -only case).
	subset map[string]bool
}

// compareBenchDocs checks a current bench document against a baseline
// and describes every regression found: a scenario whose runs/sec fell
// more than the tolerance below the baseline (when the baseline's
// campaign ran long enough to time), a slower whole-registry
// throughput, a scenario that disappeared, and — when the two documents
// ran the same seeds and fast mode — any drift in the deterministic
// headline numbers (runs, errors, success rate, metric means).
// Scenarios only present in the current document are new work, not
// regressions.
func compareBenchDocs(current, baseline benchDoc, opts compareOptions) []string {
	var problems []string
	curByName := make(map[string]benchEntry, len(current.Scenarios))
	for _, e := range current.Scenarios {
		curByName[e.Scenario] = e
	}
	tol := opts.tolerance
	sameConfig := current.Seeds == baseline.Seeds && current.Fast == baseline.Fast
	for _, base := range baseline.Scenarios {
		if opts.subset != nil && !opts.subset[base.Scenario] {
			continue
		}
		cur, ok := curByName[base.Scenario]
		if !ok {
			problems = append(problems, fmt.Sprintf("scenario %s disappeared from the bench document", base.Scenario))
			continue
		}
		if !opts.driftOnly && base.Seconds >= benchNoiseFloor && cur.RunsPerSec < (1-tol)*base.RunsPerSec {
			problems = append(problems, fmt.Sprintf("scenario %s: %.1f runs/sec, more than %.0f%% below baseline %.1f",
				base.Scenario, cur.RunsPerSec, 100*tol, base.RunsPerSec))
		}
		if sameConfig {
			problems = append(problems, driftProblems(cur, base)...)
		}
	}
	if !opts.driftOnly && opts.subset == nil &&
		current.TotalRunsPerSec < (1-tol)*baseline.TotalRunsPerSec {
		problems = append(problems, fmt.Sprintf("total throughput %.1f runs/sec, more than %.0f%% below baseline %.1f",
			current.TotalRunsPerSec, 100*tol, baseline.TotalRunsPerSec))
	}
	if !opts.driftOnly && opts.subset == nil {
		baseRows := make(map[int]benchWorkersRow, len(baseline.WorkersRows))
		for _, row := range baseline.WorkersRows {
			baseRows[row.Workers] = row
		}
		for _, cur := range current.WorkersRows {
			// A row the baseline also timed is gated row-to-row; a row the
			// baseline predates is still gated against the baseline's main
			// total — more workers must never be slower than the baseline's
			// single-pass throughput.
			want := baseline.TotalRunsPerSec
			if base, ok := baseRows[cur.Workers]; ok {
				want = base.TotalRunsPerSec
			}
			if cur.TotalRunsPerSec < (1-tol)*want {
				problems = append(problems, fmt.Sprintf("workers=%d throughput %.1f runs/sec, more than %.0f%% below baseline %.1f",
					cur.Workers, cur.TotalRunsPerSec, 100*tol, want))
			}
		}
		for _, base := range baseline.WorkersRows {
			found := false
			for _, cur := range current.WorkersRows {
				found = found || cur.Workers == base.Workers
			}
			if !found {
				problems = append(problems, fmt.Sprintf("workers=%d row disappeared from the bench document", base.Workers))
			}
		}
	}
	return problems
}

// driftProblems describes headline-metric drift between two entries for
// the same scenario benchmarked under the same seeds and fast mode —
// numbers that determinism pins exactly, so any drift means the
// scenario's behaviour changed. Metrics that only exist in the current
// entry are new measurements, not drift.
func driftProblems(cur, base benchEntry) []string {
	var problems []string
	name := base.Scenario
	if cur.Runs != base.Runs || cur.Errors != base.Errors {
		problems = append(problems, fmt.Sprintf("scenario %s: runs/errors %d/%d, baseline %d/%d",
			name, cur.Runs, cur.Errors, base.Runs, base.Errors))
	}
	switch {
	case (cur.SuccessRatePct == nil) != (base.SuccessRatePct == nil):
		problems = append(problems, fmt.Sprintf("scenario %s: success rate presence changed", name))
	case base.SuccessRatePct != nil && !nearlyEqual(*cur.SuccessRatePct, *base.SuccessRatePct):
		problems = append(problems, fmt.Sprintf("scenario %s: success rate drifted %.6f%% -> %.6f%%",
			name, *base.SuccessRatePct, *cur.SuccessRatePct))
	}
	metrics := make([]string, 0, len(base.MetricMeans))
	for metric := range base.MetricMeans {
		metrics = append(metrics, metric)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		want := base.MetricMeans[metric]
		got, ok := cur.MetricMeans[metric]
		if !ok {
			problems = append(problems, fmt.Sprintf("scenario %s: metric %s disappeared", name, metric))
			continue
		}
		if !nearlyEqual(got, want) {
			problems = append(problems, fmt.Sprintf("scenario %s: metric %s drifted %v -> %v", name, metric, want, got))
		}
	}
	return problems
}

// nearlyEqual reports whether two headline values agree within float
// formatting noise.
func nearlyEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= driftTolerance*math.Max(scale, 1)
}
