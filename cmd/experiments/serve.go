package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"dnstime"
)

// serveConfig holds the parsed serve-subcommand flags.
type serveConfig struct {
	addr    string
	workers int
	queue   int
	state   string
	rate    float64
	burst   int
	pprof   bool
	cache   int
	grace   time.Duration
}

// serveFlagSet declares the serve flag surface on a fresh FlagSet. The
// README command checker parses documented commands against the same set.
func serveFlagSet(cfg *serveConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	fs.IntVar(&cfg.workers, "workers", 0, "engine workers shared by all campaigns (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 0, "job queue capacity; full queue answers 503 (0 = 32)")
	fs.StringVar(&cfg.state, "state", "", "checkpoint directory for drain/resume (empty = no durable state)")
	fs.Float64Var(&cfg.rate, "rate", 0, "per-client submissions per second (0 = unlimited)")
	fs.IntVar(&cfg.burst, "burst", 0, "per-client submission burst (with -rate; 0 = 1)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.IntVar(&cfg.cache, "cache", 0, "completed-aggregate cache capacity (0 = 256)")
	fs.DurationVar(&cfg.grace, "grace", 30*time.Second, "drain budget after SIGINT/SIGTERM")
	return fs
}

// runServe is the serve subcommand: boot the resident experiment service
// (DESIGN.md §11) and serve its HTTP API on -addr until ctx is cancelled
// (the CLI wires SIGINT/SIGTERM to it). The shutdown path drains first —
// new submissions get 503, the running campaign's engine is cancelled so
// its checkpoint in -state holds every completed seed for resumption —
// then closes HTTP connections within the -grace budget.
func runServe(ctx context.Context, argv []string, w io.Writer) error {
	var cfg serveConfig
	fs := serveFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	srv, err := dnstime.NewExperimentServer(dnstime.ExperimentServerConfig{
		Workers:  cfg.workers,
		QueueCap: cfg.queue,
		StateDir: cfg.state,
		Rate:     cfg.rate,
		Burst:    cfg.burst,
		Pprof:    cfg.pprof,
		CacheCap: cfg.cache,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The resolved address is printed before serving so scripts (and the
	// smoke test) can submit as soon as the line appears, even with port 0.
	fmt.Fprintf(w, "experiments serve: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	// Drain the service before the listener: cancelled campaigns publish
	// their partial aggregates, so every open stream receives its terminal
	// line and HTTP shutdown finds only idle connections.
	if err := srv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(w, "experiments serve: drained")
	return nil
}
