package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// addrNotifier is an io.Writer that watches runServe's output for the
// "listening on http://..." line and delivers the base URL exactly once.
type addrNotifier struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	ready chan string
	sent  bool
}

var listenLine = regexp.MustCompile(`listening on (http://\S+)`)

// Write accumulates output and signals the listen address when it appears.
func (n *addrNotifier) Write(p []byte) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.buf.Write(p)
	if !n.sent {
		if m := listenLine.FindSubmatch(n.buf.Bytes()); m != nil {
			n.sent = true
			n.ready <- string(m[1])
		}
	}
	return len(p), nil
}

// String snapshots everything runServe printed.
func (n *addrNotifier) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.buf.String()
}

// bootServe runs the serve subcommand on an ephemeral port and returns
// its base URL plus a shutdown function that triggers the graceful drain
// and waits for runServe to return.
func bootServe(t *testing.T, argv ...string) (base string, output *addrNotifier, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	output = &addrNotifier{ready: make(chan string, 1)}
	done := make(chan error, 1)
	argv = append([]string{"-addr", "127.0.0.1:0"}, argv...)
	go func() { done <- runServe(ctx, argv, output) }()
	select {
	case base = <-output.ready:
	case err := <-done:
		t.Fatalf("runServe exited before listening: %v\n%s", err, output.String())
	case <-time.After(10 * time.Second):
		t.Fatal("runServe never reported its listen address")
	}
	var once sync.Once
	var shutErr error
	shutdown = func() error {
		once.Do(func() {
			cancel()
			select {
			case shutErr = <-done:
			case <-time.After(30 * time.Second):
				shutErr = fmt.Errorf("runServe did not return after cancel")
			}
		})
		return shutErr
	}
	t.Cleanup(func() { shutdown() }) //nolint:errcheck // tests that care check the first call
	return base, output, shutdown
}

// serveStreamLine mirrors the service's JSONL stream line shape.
type serveStreamLine struct {
	Type      string          `json:"type"`
	Aggregate json.RawMessage `json:"aggregate"`
	Cached    bool            `json:"cached"`
	Error     string          `json:"error"`
}

// streamFinal streams a job to completion and returns its terminal line.
func streamFinal(t *testing.T, base, id string) serveStreamLine {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last serveStreamLine
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line does not parse: %v\n%s", err, sc.Text())
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 || (last.Type != "aggregate" && last.Type != "error") {
		t.Fatalf("stream ended without a terminal line after %d lines: %+v", n, last)
	}
	return last
}

// postJob submits a campaign spec and decodes the job view.
func postJob(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v
}

// TestRunServeSmoke is the end-to-end acceptance test the CI smoke job
// runs race-checked: boot the service, submit a -fast boot campaign over
// HTTP, and assert the streamed aggregate is byte-identical to what
// `experiments campaigns -json` prints for the same spec — then that a
// repeat submission is answered from the cache, and that SIGTERM-style
// cancellation drains cleanly.
func TestRunServeSmoke(t *testing.T) {
	base, output, shutdown := bootServe(t)

	body := `{"scenario":"boot","seeds":3,"fast":true}`
	status, v := postJob(t, base, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", status, v)
	}
	id, _ := v["id"].(string)
	final := streamFinal(t, base, id)
	if final.Type != "aggregate" || final.Error != "" || final.Cached {
		t.Fatalf("terminal line %+v", final)
	}

	// The CLI reference: same spec through the campaigns subcommand. The
	// envelope is decoded with RawMessage so the scenario aggregate's bytes
	// survive untouched; compacting only strips the -json indentation.
	var cli bytes.Buffer
	err := runCampaigns(context.Background(), []string{
		"-seeds", "3", "-fast", "-only", "boot", "-json", "-q",
	}, &cli)
	if err != nil {
		t.Fatalf("runCampaigns reference: %v", err)
	}
	var envelope struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(cli.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if len(envelope.Scenarios) != 1 {
		t.Fatalf("CLI envelope has %d scenarios", len(envelope.Scenarios))
	}
	var want bytes.Buffer
	if err := json.Compact(&want, envelope.Scenarios[0]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Aggregate, want.Bytes()) {
		t.Errorf("served aggregate differs from CLI output:\n%s\nvs\n%s", final.Aggregate, want.Bytes())
	}

	// Repeat submission: a cache hit, answered as an already-done job with
	// identical aggregate bytes.
	status, v = postJob(t, base, body)
	if status != http.StatusOK || v["cached"] != true {
		t.Fatalf("repeat submission status %d, view %v, want cached 200", status, v)
	}
	hitID, _ := v["id"].(string)
	hit := streamFinal(t, base, hitID)
	if !hit.Cached || !bytes.Equal(hit.Aggregate, final.Aggregate) {
		t.Errorf("cached aggregate differs:\n%s\nvs\n%s", hit.Aggregate, final.Aggregate)
	}

	var m struct {
		Cache struct {
			Hits int `json:"hits"`
		} `json:"cache"`
		Engine struct {
			Campaigns int `json:"campaigns"`
		} `json:"engine"`
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Cache.Hits != 1 || m.Engine.Campaigns != 1 {
		t.Errorf("metrics after cache hit: %+v, want 1 hit and 1 engine campaign", m)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful drain: %v\n%s", err, output.String())
	}
	if !strings.Contains(output.String(), "drained") {
		t.Errorf("no drain confirmation in output:\n%s", output.String())
	}
}

// TestRunServeDrainResume: the serve process's SIGTERM path (a cancelled
// context) leaves the in-flight campaign's checkpoint in -state, and a
// fresh serve process over the same directory completes the resubmitted
// campaign with the checkpointed seeds resumed, not re-executed.
func TestRunServeDrainResume(t *testing.T) {
	dir := t.TempDir()
	body := `{"scenario":"table3","seeds":4}`

	base, _, shutdown := bootServe(t, "-state", dir, "-workers", "1")
	status, v := postJob(t, base, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	id, _ := v["id"].(string)
	if final := streamFinal(t, base, id); final.Type != "aggregate" {
		t.Fatalf("first run terminal line %+v", final)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("first drain: %v", err)
	}

	// Second process, same state directory: the campaign replays from its
	// checkpoint (resumed_runs covers every seed, none executed again).
	base2, _, shutdown2 := bootServe(t, "-state", dir, "-workers", "1")
	status, v = postJob(t, base2, body)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	id2, _ := v["id"].(string)
	final := streamFinal(t, base2, id2)
	if final.Type != "aggregate" || final.Error != "" {
		t.Fatalf("resumed terminal line %+v", final)
	}
	var m struct {
		Engine struct {
			ExecutedRuns int `json:"executed_runs"`
			ResumedRuns  int `json:"resumed_runs"`
		} `json:"engine"`
	}
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Engine.ExecutedRuns != 0 || m.Engine.ResumedRuns != 4 {
		t.Errorf("engine counters %+v, want 0 executed / 4 resumed across the restart", m.Engine)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestRunServeBadArgs: stray positionals and malformed flags are refused.
func TestRunServeBadArgs(t *testing.T) {
	for name, argv := range map[string][]string{
		"positional":   {"jobs"},
		"unknown flag": {"-serve-forever"},
		"bad address":  {"-addr", "999.999.999.999:70000"},
	} {
		if err := runServe(context.Background(), argv, io.Discard); err == nil {
			t.Errorf("%s: accepted (argv %v)", name, argv)
		}
	}
}
