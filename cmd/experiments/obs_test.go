package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBenchProfiles exercises the profiling flags: -cpuprofile and
// -memprofile write non-empty pprof files, and the bench document's
// entries carry the phase-timing breakdown.
func TestRunBenchProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	out := filepath.Join(dir, "bench.json")
	err := runBench(context.Background(), []string{
		"-seeds", "2", "-fast", "-only", "boot",
		"-cpuprofile", cpu, "-memprofile", mem, "-o", out,
	}, io.Discard)
	if err != nil {
		t.Fatalf("runBench with profiles: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bench document does not parse: %v", err)
	}
	if len(doc.Scenarios) != 1 {
		t.Fatalf("%d scenario entries, want 1", len(doc.Scenarios))
	}
	phases := doc.Scenarios[0].PhaseSeconds
	if phases["run"] <= 0 {
		t.Errorf("phase_seconds missing run phase: %v", phases)
	}
	for phase := range phases {
		switch phase {
		case "setup", "reset", "run", "fold":
		default:
			t.Errorf("unknown phase %q in %v", phase, phases)
		}
	}
}

// TestRunCampaignsTrace exercises the -trace flag end to end: one valid
// Chrome trace file appears per seed.
func TestRunCampaignsTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	err := runCampaigns(context.Background(), []string{
		"-seeds", "2", "-seed", "0", "-only", "boot", "-fast", "-q", "-trace", dir,
	}, io.Discard)
	if err != nil {
		t.Fatalf("runCampaigns -trace: %v", err)
	}
	for _, name := range []string{"boot-seed0.trace.json", "boot-seed1.trace.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("trace file: %v", err)
		}
		var events []map[string]any
		if err := json.Unmarshal(b, &events); err != nil {
			t.Fatalf("%s does not parse as a trace array: %v", name, err)
		}
		if len(events) == 0 {
			t.Errorf("%s has no events", name)
		}
		var cats []string
		for _, e := range events {
			cats = append(cats, e["cat"].(string))
		}
		joined := strings.Join(cats, ",")
		for _, cat := range []string{"net", "clock", "run"} {
			if !strings.Contains(joined, cat) {
				t.Errorf("%s records no %q events", name, cat)
			}
		}
	}
}
