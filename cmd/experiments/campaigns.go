package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnstime"
	"dnstime/internal/stats"
)

// campaignOutput is the -json document: one aggregate per selected
// scenario, in registry (paper) order.
type campaignOutput struct {
	Seeds     int                         `json:"seeds"`
	BaseSeed  int64                       `json:"base_seed"`
	Fast      bool                        `json:"fast,omitempty"`
	Params    dnstime.ScenarioParams      `json:"params,omitempty"`
	Scenarios []dnstime.ScenarioAggregate `json:"scenarios"`
}

// repeatedFlag collects every occurrence of a repeatable string flag
// (-param k=v -param k2=v2).
type repeatedFlag []string

// String renders the collected values (flag.Value).
func (r *repeatedFlag) String() string { return strings.Join(*r, ",") }

// Set appends one occurrence (flag.Value).
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

// campaignConfig holds the parsed campaigns-subcommand flags.
type campaignConfig struct {
	seeds      int
	workers    int
	baseSeed   int64
	jsonOut    bool
	only       string
	fast       bool
	perRun     bool
	quiet      bool
	params     repeatedFlag
	client     string
	checkpoint string
	resume     string
	force      bool
	traceDir   string
}

// campaignFlagSet declares the campaigns flag surface on a fresh FlagSet.
// The README command checker parses documented commands against the same
// set, so the docs cannot name flags the CLI does not have.
func campaignFlagSet(cfg *campaignConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("campaigns", flag.ContinueOnError)
	fs.IntVar(&cfg.seeds, "seeds", 64, "independent seeds per scenario")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	fs.Int64Var(&cfg.baseSeed, "seed", 1, "first seed; run i uses seed+i (an explicit 0 runs seed 0)")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit aggregates as JSON")
	fs.StringVar(&cfg.only, "only", "", "comma-separated scenario subset (default: all; see `experiments scenarios`)")
	fs.BoolVar(&cfg.fast, "fast", false, "shrink the slowest scenarios' populations")
	fs.BoolVar(&cfg.perRun, "perrun", false, "include per-seed results in -json output")
	fs.BoolVar(&cfg.quiet, "q", false, "suppress progress reporting on stderr")
	fs.Var(&cfg.params, "param", "scenario param override as key=value (repeatable; needs -only with one scenario)")
	fs.StringVar(&cfg.client, "client", "", "client profile param (shorthand for -param client=...)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "write a JSONL line per completed seed to this file (needs -only with one scenario)")
	fs.StringVar(&cfg.resume, "resume", "", "skip seeds already completed in this checkpoint file")
	fs.BoolVar(&cfg.force, "force", false, "resume a checkpoint written by a different build revision")
	fs.StringVar(&cfg.traceDir, "trace", "", "write one Chrome trace_event file per seed to this directory (open in Perfetto)")
	return fs
}

// campaignParams folds -param pairs and the -client shorthand into one
// validated param set.
func (cfg *campaignConfig) campaignParams() (dnstime.ScenarioParams, error) {
	params, err := dnstime.ParseScenarioParams(cfg.params)
	if err != nil {
		return nil, err
	}
	if cfg.client != "" {
		if _, dup := params["client"]; dup {
			return nil, errors.New("-client and -param client=... are mutually exclusive")
		}
		if params == nil {
			params = dnstime.ScenarioParams{}
		}
		params["client"] = cfg.client
	}
	return params, nil
}

// runCampaigns is the campaigns subcommand: fan the selected registered
// scenarios out across many seeds via the Engine and print aggregates to
// w. Cancelling ctx (the CLI wires SIGINT to it) drains the workers,
// prints the partial aggregate and reports the interruption; with
// -checkpoint the run can be picked up again with -resume.
func runCampaigns(ctx context.Context, argv []string, w io.Writer) error {
	var cfg campaignConfig
	fs := campaignFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	// A stray positional argument is almost always a forgotten -only; if
	// ignored, the CLI would silently run the entire registry.
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (scenarios are selected with -only name,...)", fs.Arg(0))
	}
	// The engine would silently default a non-positive count, leaving the
	// echoed values out of step with the runs actually executed.
	if cfg.seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", cfg.seeds)
	}
	names, err := selectScenarios(cfg.only)
	if err != nil {
		return err
	}
	params, err := cfg.campaignParams()
	if err != nil {
		return err
	}
	// Params and checkpoints are per-scenario; applying one file or one
	// param set across the whole registry would be nonsense.
	if (len(params) > 0 || cfg.checkpoint != "" || cfg.resume != "") && len(names) != 1 {
		return errors.New("-param/-client/-checkpoint/-resume need -only with exactly one scenario")
	}

	out := campaignOutput{Seeds: cfg.seeds, BaseSeed: cfg.baseSeed, Fast: cfg.fast, Params: params}
	for _, name := range names {
		opts := []dnstime.EngineOption{
			dnstime.WithSeeds(cfg.seeds),
			dnstime.WithBaseSeed(cfg.baseSeed),
			dnstime.WithWorkers(cfg.workers),
			dnstime.WithFast(cfg.fast),
			dnstime.WithParams(params),
		}
		if cfg.checkpoint != "" {
			opts = append(opts, dnstime.WithCheckpoint(cfg.checkpoint))
		}
		if cfg.resume != "" {
			opts = append(opts, dnstime.WithResume(cfg.resume))
		}
		if cfg.force {
			opts = append(opts, dnstime.WithResumeForce())
		}
		if cfg.traceDir != "" {
			opts = append(opts, dnstime.WithTraceDir(cfg.traceDir))
		}
		if !cfg.quiet {
			label := name
			opts = append(opts, dnstime.WithProgress(func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-16s %d/%d runs", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}))
		}
		agg, err := dnstime.NewEngine(opts...).Run(ctx, name)
		interrupted := agg.Partial &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if err != nil && !interrupted {
			return err
		}
		if interrupted && !cfg.quiet {
			fmt.Fprintln(os.Stderr) // progress line ends without its total
		}
		if !cfg.perRun {
			agg.PerRun = nil
		}
		if cfg.jsonOut {
			out.Scenarios = append(out.Scenarios, agg)
		} else {
			fmt.Fprintf(w, "== campaign %s (%s): %d seeds ==\n", agg.Scenario, agg.PaperRef, cfg.seeds)
			fmt.Fprintln(w, agg.Render())
		}
		if interrupted {
			if cfg.jsonOut {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				if err := enc.Encode(out); err != nil {
					return err
				}
			}
			hint := ""
			if cfg.checkpoint != "" {
				hint = fmt.Sprintf("; resume with -resume %s", cfg.checkpoint)
			}
			return fmt.Errorf("interrupted after %d/%d %s runs%s", agg.Runs, cfg.seeds, name, hint)
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// selectScenarios resolves a -only list against the registry (paper order,
// every name validated); an empty list selects every registered scenario.
func selectScenarios(only string) ([]string, error) {
	all := dnstime.ScenarioNames()
	if strings.TrimSpace(only) == "" {
		return all, nil
	}
	registered := make(map[string]bool, len(all))
	for _, name := range all {
		registered[name] = true
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !registered[name] {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(all, ", "))
		}
		want[name] = true
	}
	var names []string
	for _, name := range all {
		if want[name] {
			names = append(names, name)
		}
	}
	return names, nil
}

// scenariosFlagSet declares the scenarios-subcommand flag surface.
func scenariosFlagSet(markdown *bool) *flag.FlagSet {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.BoolVar(markdown, "markdown", false, "emit the DESIGN.md §4 experiment index")
	return fs
}

// runScenarios is the scenarios subcommand: list the registry, or emit the
// DESIGN.md §4 experiment index with -markdown.
func runScenarios(argv []string, w io.Writer) error {
	var markdown bool
	fs := scenariosFlagSet(&markdown)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if markdown {
		fmt.Fprint(w, dnstime.ScenarioIndexMarkdown())
		return nil
	}
	t := stats.NewTable("Name", "Experiment", "Paper", "Parameters", "Single-run CLI")
	for _, s := range dnstime.Scenarios() {
		t.AddRow(s.Name, s.Title, s.PaperRef, s.ParamString(), s.CLI)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "Run any scenario as a multi-seed campaign: experiments campaigns -only <name>")
	fmt.Fprintln(w, "Parameterisable scenarios take overrides: experiments campaigns -only boot -param client=chrony")
	return nil
}
