package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnstime"
	"dnstime/internal/stats"
)

// campaignOutput is the -json document: one Table I campaign plus any
// single-spec campaigns, in a fixed order.
type campaignOutput struct {
	Seeds    int                         `json:"seeds"`
	BaseSeed int64                       `json:"base_seed"`
	TableI   []dnstime.CampaignTableIRow `json:"table1,omitempty"`
	Attacks  []dnstime.CampaignAggregate `json:"attacks,omitempty"`
}

// runCampaigns is the campaigns subcommand: fan the selected experiments
// out across many seeds and print aggregates to w.
func runCampaigns(argv []string, w io.Writer) error {
	fs := flag.NewFlagSet("campaigns", flag.ContinueOnError)
	seeds := fs.Int("seeds", 64, "independent seeds per experiment")
	workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	baseSeed := fs.Int64("seed", 1, "first seed; run i uses seed+i")
	jsonOut := fs.Bool("json", false, "emit aggregates as JSON")
	only := fs.String("only", "", "comma-separated subset: table1,boot,runtime,chronos")
	clientName := fs.String("client", "ntpd", "client profile for boot/runtime campaigns")
	scenario := fs.String("scenario", "p1", "run-time scenario: p1 (upstreams known) or p2 (RefID discovery)")
	perRun := fs.Bool("perrun", false, "include per-seed results in -json output")
	quiet := fs.Bool("q", false, "suppress progress reporting on stderr")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	// The engine would silently default a non-positive count, leaving the
	// echoed seed count out of step with the runs actually executed.
	if *seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", *seeds)
	}
	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, s := range strings.Split(*only, ",") {
			if strings.TrimSpace(s) == name {
				return true
			}
		}
		return false
	}
	prof, err := profileByName(*clientName)
	if err != nil {
		return err
	}
	scen := dnstime.ScenarioP1
	if strings.EqualFold(*scenario, "p2") {
		scen = dnstime.ScenarioP2
	}
	progress := func(label string) func(done, total int) {
		if *quiet {
			return nil
		}
		return func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-28s %d/%d runs", label, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	out := campaignOutput{Seeds: *seeds, BaseSeed: *baseSeed}
	trim := func(agg dnstime.CampaignAggregate) dnstime.CampaignAggregate {
		if !*perRun {
			agg.PerRun = nil
		}
		return agg
	}

	if want("table1") {
		rows, err := dnstime.CampaignTableI(dnstime.CampaignTableIOptions{
			Seeds:    *seeds,
			BaseSeed: *baseSeed,
			Workers:  *workers,
			Progress: progress("table1 (boot × 7 clients)"),
		})
		if err != nil {
			return err
		}
		for i := range rows {
			rows[i].Boot = trim(rows[i].Boot)
		}
		out.TableI = rows
		if !*jsonOut {
			fmt.Fprintf(w, "== Table I campaign: boot-time attack, %d seeds per client ==\n", *seeds)
			t := stats.NewTable("Client", "run-time", "boot success %", "95% CI", "mean TTS", "p95 TTS")
			for _, r := range rows {
				t.AddRow(r.Client, r.RunTime,
					fmt.Sprintf("%.1f (%d/%d)", r.Boot.SuccessRate, r.Boot.Successes, r.Boot.Runs),
					fmt.Sprintf("%.1f–%.1f", r.Boot.SuccessCI.Lo, r.Boot.SuccessCI.Hi),
					fmt.Sprintf("%.0fs", r.Boot.MeanTTS),
					fmt.Sprintf("%.0fs", r.Boot.P95TTS))
			}
			fmt.Fprintln(w, t)
		}
	}

	specs := []struct {
		name string
		spec dnstime.CampaignSpec
	}{
		{"boot", dnstime.CampaignSpec{Kind: dnstime.CampaignBootTime, Profile: prof}},
		{"runtime", dnstime.CampaignSpec{Kind: dnstime.CampaignRuntime, Profile: prof, Scenario: scen}},
		// ChronosN/ChronosSpoofed are Run's defaults, set here so the
		// progress label (computed before Run) matches the aggregate's.
		{"chronos", dnstime.CampaignSpec{Kind: dnstime.CampaignChronos, ChronosN: 5, ChronosSpoofed: 89}},
	}
	for _, s := range specs {
		if !want(s.name) {
			continue
		}
		// The bare "boot" campaign duplicates one table1 column; only run
		// it when requested explicitly.
		if s.name == "boot" && *only == "" {
			continue
		}
		spec := s.spec
		spec.Seeds = *seeds
		spec.BaseSeed = *baseSeed
		spec.Workers = *workers
		spec.Progress = progress(spec.Label())
		agg, err := dnstime.RunCampaign(spec)
		if err != nil {
			return err
		}
		out.Attacks = append(out.Attacks, trim(agg))
		if !*jsonOut {
			fmt.Fprintln(w, agg)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// profileByName maps a CLI name to a client profile.
func profileByName(name string) (dnstime.Profile, error) {
	switch strings.ToLower(name) {
	case "ntpd":
		return dnstime.ProfileNTPd, nil
	case "chrony":
		return dnstime.ProfileChrony, nil
	case "openntpd":
		return dnstime.ProfileOpenNTPD, nil
	case "ntpdate":
		return dnstime.ProfileNtpdate, nil
	case "android":
		return dnstime.ProfileAndroid, nil
	case "ntpclient":
		return dnstime.ProfileNtpclient, nil
	case "systemd":
		return dnstime.ProfileSystemd, nil
	default:
		return dnstime.Profile{}, fmt.Errorf("unknown client %q (want ntpd, chrony, openntpd, ntpdate, android, ntpclient, systemd)", name)
	}
}
