package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnstime"
	"dnstime/internal/stats"
)

// campaignOutput is the -json document: one aggregate per selected
// scenario, in registry (paper) order.
type campaignOutput struct {
	Seeds     int                         `json:"seeds"`
	BaseSeed  int64                       `json:"base_seed"`
	Fast      bool                        `json:"fast,omitempty"`
	Scenarios []dnstime.ScenarioAggregate `json:"scenarios"`
}

// campaignConfig holds the parsed campaigns-subcommand flags.
type campaignConfig struct {
	seeds    int
	workers  int
	baseSeed int64
	jsonOut  bool
	only     string
	fast     bool
	perRun   bool
	quiet    bool
}

// campaignFlagSet declares the campaigns flag surface on a fresh FlagSet.
// The README command checker parses documented commands against the same
// set, so the docs cannot name flags the CLI does not have.
func campaignFlagSet(cfg *campaignConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("campaigns", flag.ContinueOnError)
	fs.IntVar(&cfg.seeds, "seeds", 64, "independent seeds per scenario")
	fs.IntVar(&cfg.workers, "workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	fs.Int64Var(&cfg.baseSeed, "seed", 1, "first seed; run i uses seed+i")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit aggregates as JSON")
	fs.StringVar(&cfg.only, "only", "", "comma-separated scenario subset (default: all; see `experiments scenarios`)")
	fs.BoolVar(&cfg.fast, "fast", false, "shrink the slowest scenarios' populations")
	fs.BoolVar(&cfg.perRun, "perrun", false, "include per-seed results in -json output")
	fs.BoolVar(&cfg.quiet, "q", false, "suppress progress reporting on stderr")
	return fs
}

// runCampaigns is the campaigns subcommand: fan the selected registered
// scenarios out across many seeds and print aggregates to w.
func runCampaigns(argv []string, w io.Writer) error {
	var cfg campaignConfig
	fs := campaignFlagSet(&cfg)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	// A stray positional argument is almost always a forgotten -only; if
	// ignored, the CLI would silently run the entire registry.
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (scenarios are selected with -only name,...)", fs.Arg(0))
	}
	// The engine would silently default a non-positive count (and a zero
	// base seed), leaving the echoed values out of step with the runs
	// actually executed.
	if cfg.seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", cfg.seeds)
	}
	if cfg.baseSeed == 0 {
		return fmt.Errorf("-seed must be non-zero (0 selects the engine default of 1)")
	}
	names, err := selectScenarios(cfg.only)
	if err != nil {
		return err
	}

	out := campaignOutput{Seeds: cfg.seeds, BaseSeed: cfg.baseSeed, Fast: cfg.fast}
	for _, name := range names {
		opts := dnstime.ScenarioCampaignOptions{
			Seeds:    cfg.seeds,
			BaseSeed: cfg.baseSeed,
			Workers:  cfg.workers,
			Fast:     cfg.fast,
		}
		if !cfg.quiet {
			label := name
			opts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-16s %d/%d runs", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		agg, err := dnstime.RunScenarioCampaign(name, opts)
		if err != nil {
			return err
		}
		if !cfg.perRun {
			agg.PerRun = nil
		}
		if cfg.jsonOut {
			out.Scenarios = append(out.Scenarios, agg)
		} else {
			fmt.Fprintf(w, "== campaign %s (%s): %d seeds ==\n", agg.Scenario, agg.PaperRef, cfg.seeds)
			fmt.Fprintln(w, agg.Render())
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// selectScenarios resolves a -only list against the registry (paper order,
// every name validated); an empty list selects every registered scenario.
func selectScenarios(only string) ([]string, error) {
	all := dnstime.ScenarioNames()
	if strings.TrimSpace(only) == "" {
		return all, nil
	}
	registered := make(map[string]bool, len(all))
	for _, name := range all {
		registered[name] = true
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !registered[name] {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(all, ", "))
		}
		want[name] = true
	}
	var names []string
	for _, name := range all {
		if want[name] {
			names = append(names, name)
		}
	}
	return names, nil
}

// scenariosFlagSet declares the scenarios-subcommand flag surface.
func scenariosFlagSet(markdown *bool) *flag.FlagSet {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.BoolVar(markdown, "markdown", false, "emit the DESIGN.md §4 experiment index")
	return fs
}

// runScenarios is the scenarios subcommand: list the registry, or emit the
// DESIGN.md §4 experiment index with -markdown.
func runScenarios(argv []string, w io.Writer) error {
	var markdown bool
	fs := scenariosFlagSet(&markdown)
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if markdown {
		fmt.Fprint(w, dnstime.ScenarioIndexMarkdown())
		return nil
	}
	t := stats.NewTable("Name", "Experiment", "Paper", "Parameters", "Single-run CLI")
	for _, s := range dnstime.Scenarios() {
		t.AddRow(s.Name, s.Title, s.PaperRef, s.ParamString(), s.CLI)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "Run any scenario as a multi-seed campaign: experiments campaigns -only <name>")
	return nil
}
