package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// compareDocs builds a baseline document with one well-timed scenario.
func compareBaseline() benchDoc {
	rate := 100.0
	return benchDoc{
		Seeds: 16, Workers: 4, GoMaxProcs: 4,
		TotalSeconds: 2, TotalRunsPerSec: 120,
		Scenarios: []benchEntry{
			{
				Scenario: "boot", Runs: 16, Errors: 0,
				Seconds: 1, RunsPerSec: 200, SuccessRatePct: &rate,
				MetricMeans: map[string]float64{"offset_s": -500, "tts_s": 192},
			},
			{
				// Sub-noise-floor campaign: throughput is not enforced.
				Scenario: "table3", Runs: 16, Errors: 0,
				Seconds: 0.001, RunsPerSec: 90000,
				MetricMeans: map[string]float64{"p1_38_3": 23.6},
			},
		},
	}
}

// TestBenchCompareSelfTest is the comparator's own acceptance: identical
// documents pass; a synthetic >15% runs/sec regression, a disappeared
// scenario and headline-metric drift each fail with a message naming the
// culprit; sub-noise-floor throughput wobble and brand-new scenarios do
// not fail.
func TestBenchCompareSelfTest(t *testing.T) {
	base := compareBaseline()
	if problems := compareBenchDocs(base, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Fatalf("identical documents flagged: %v", problems)
	}

	// 20% scenario regression plus a slower registry: both reported.
	slow := compareBaseline()
	slow.Scenarios[0].RunsPerSec = 160
	slow.TotalRunsPerSec = 90
	problems := compareBenchDocs(slow, base, compareOptions{tolerance: 0.15})
	if len(problems) != 2 {
		t.Fatalf("synthetic regression: got %v", problems)
	}
	if !strings.Contains(problems[0], "boot") || !strings.Contains(problems[1], "total throughput") {
		t.Errorf("regression report does not name the culprits: %v", problems)
	}
	// A 10% dip stays inside the tolerance.
	mild := compareBaseline()
	mild.Scenarios[0].RunsPerSec = 180
	mild.TotalRunsPerSec = 110
	if problems := compareBenchDocs(mild, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Errorf("10%% dip flagged at 15%% tolerance: %v", problems)
	}
	// Sub-noise-floor scenarios may wobble freely.
	noisy := compareBaseline()
	noisy.Scenarios[1].RunsPerSec = 10
	if problems := compareBenchDocs(noisy, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Errorf("sub-floor wobble flagged: %v", problems)
	}

	// Headline drift under the same config: success rate, metric means,
	// disappeared metrics.
	drift := compareBaseline()
	r := 93.75
	drift.Scenarios[0].SuccessRatePct = &r
	drift.Scenarios[0].MetricMeans = map[string]float64{"offset_s": -499, "extra": 1}
	problems = compareBenchDocs(drift, base, compareOptions{tolerance: 0.15})
	if len(problems) != 3 {
		t.Fatalf("drift: got %v", problems)
	}
	for i, want := range []string{"success rate drifted", "offset_s drifted", "tts_s disappeared"} {
		if !strings.Contains(problems[i], want) {
			t.Errorf("drift problem %d = %q, want mention of %q", i, problems[i], want)
		}
	}
	// Different seed counts: means legitimately differ, only throughput
	// and presence are checked.
	other := compareBaseline()
	other.Seeds = 64
	other.Scenarios[0].MetricMeans["offset_s"] = -350
	if problems := compareBenchDocs(other, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Errorf("cross-config drift flagged: %v", problems)
	}

	// A scenario disappearing fails; a new one does not.
	gone := compareBaseline()
	gone.Scenarios = gone.Scenarios[:1]
	if problems := compareBenchDocs(gone, base, compareOptions{tolerance: 0.15}); len(problems) != 1 || !strings.Contains(problems[0], "table3") {
		t.Errorf("disappearance: got %v", problems)
	}
	grown := compareBaseline()
	grown.Scenarios = append(grown.Scenarios, benchEntry{Scenario: "racemargin", Runs: 16, Seconds: 1, RunsPerSec: 50})
	if problems := compareBenchDocs(grown, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Errorf("new scenario flagged: %v", problems)
	}

	// driftOnly ignores throughput entirely (the cross-machine mode) but
	// still catches drift.
	slowDrift := compareBaseline()
	slowDrift.Scenarios[0].RunsPerSec = 10
	slowDrift.TotalRunsPerSec = 5
	if problems := compareBenchDocs(slowDrift, base, compareOptions{tolerance: 0.15, driftOnly: true}); len(problems) != 0 {
		t.Errorf("driftOnly flagged throughput: %v", problems)
	}
	slowDrift.Scenarios[0].MetricMeans["tts_s"] = 1
	if problems := compareBenchDocs(slowDrift, base, compareOptions{tolerance: 0.15, driftOnly: true}); len(problems) != 1 ||
		!strings.Contains(problems[0], "tts_s drifted") {
		t.Errorf("driftOnly missed metric drift: %v", problems)
	}

	// A subset comparison checks only the selected scenarios: no spurious
	// "disappeared" for unselected ones, no whole-registry total check.
	only := compareBaseline()
	only.Scenarios = only.Scenarios[:1]
	only.TotalRunsPerSec = 1
	subset := compareOptions{tolerance: 0.15, subset: map[string]bool{"boot": true}}
	if problems := compareBenchDocs(only, base, subset); len(problems) != 0 {
		t.Errorf("subset comparison flagged unselected scenarios: %v", problems)
	}
	only.Scenarios[0].RunsPerSec = 100
	if problems := compareBenchDocs(only, base, subset); len(problems) != 1 || !strings.Contains(problems[0], "boot") {
		t.Errorf("subset comparison missed the selected regression: %v", problems)
	}

	// Workers rows. A row the baseline predates is gated against the
	// baseline's main total; once the baseline carries the row it is gated
	// row-to-row, and dropping it fails.
	rows := compareBaseline()
	rows.WorkersRows = []benchWorkersRow{{Workers: 4, TotalSeconds: 1, TotalRunsPerSec: 130}}
	if problems := compareBenchDocs(rows, base, compareOptions{tolerance: 0.15}); len(problems) != 0 {
		t.Errorf("fresh workers row above baseline total flagged: %v", problems)
	}
	rows.WorkersRows[0].TotalRunsPerSec = 90 // >15% below baseline total 120
	if problems := compareBenchDocs(rows, base, compareOptions{tolerance: 0.15}); len(problems) != 1 ||
		!strings.Contains(problems[0], "workers=4") {
		t.Errorf("slow fresh workers row: got %v", problems)
	}
	rowBase := compareBaseline()
	rowBase.WorkersRows = []benchWorkersRow{{Workers: 4, TotalSeconds: 1, TotalRunsPerSec: 400}}
	rowCur := compareBaseline()
	rowCur.WorkersRows = []benchWorkersRow{{Workers: 4, TotalSeconds: 1, TotalRunsPerSec: 300}}
	if problems := compareBenchDocs(rowCur, rowBase, compareOptions{tolerance: 0.15}); len(problems) != 1 ||
		!strings.Contains(problems[0], "workers=4") {
		t.Errorf("row-to-row regression: got %v", problems)
	}
	rowCur.WorkersRows = nil
	if problems := compareBenchDocs(rowCur, rowBase, compareOptions{tolerance: 0.15}); len(problems) != 1 ||
		!strings.Contains(problems[0], "disappeared") {
		t.Errorf("dropped workers row: got %v", problems)
	}
	rowBase.WorkersRows = nil
	rowCur.WorkersRows = []benchWorkersRow{{Workers: 4, TotalSeconds: 1, TotalRunsPerSec: 30}}
	if problems := compareBenchDocs(rowCur, rowBase, compareOptions{tolerance: 0.15, driftOnly: true}); len(problems) != 0 {
		t.Errorf("driftOnly flagged workers-row throughput: %v", problems)
	}
}

// TestRunBenchCompareCLI drives the full -in/-compare CLI path: a
// passing comparison exits clean and reports it, a regressed document
// exits with an error, and the flag surface is validated.
func TestRunBenchCompareCLI(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc benchDoc) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", compareBaseline())
	same := write("same.json", compareBaseline())
	slowDoc := compareBaseline()
	slowDoc.Scenarios[0].RunsPerSec = 100
	slowDoc.TotalRunsPerSec = 60
	slow := write("slow.json", slowDoc)

	var out bytes.Buffer
	if err := runBench(context.Background(), []string{"-in", same, "-compare", base}, &out); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Errorf("clean comparison output:\n%s", out.String())
	}
	err := runBench(context.Background(), []string{"-in", slow, "-compare", base}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regressed document: err = %v", err)
	}
	// A generous tolerance lets the same document pass.
	if err := runBench(context.Background(), []string{"-in", slow, "-compare", base, "-tolerance", "0.6"}, io.Discard); err != nil {
		t.Errorf("tolerance 0.6: %v", err)
	}

	for name, argv := range map[string][]string{
		"-in without -compare": {"-in", same},
		"missing baseline":     {"-in", same, "-compare", filepath.Join(dir, "nope.json")},
		"missing current":      {"-in", filepath.Join(dir, "nope.json"), "-compare", base},
		"bad tolerance":        {"-in", same, "-compare", base, "-tolerance", "1.5"},
		// flag.Float64Var parses NaN and ±Inf; the validator must reject
		// them or every regression comparison degenerates to a pass.
		"NaN tolerance": {"-in", same, "-compare", base, "-tolerance", "NaN"},
		"Inf tolerance": {"-in", same, "-compare", base, "-tolerance", "+Inf"},
	} {
		if err := runBench(context.Background(), argv, io.Discard); err == nil {
			t.Errorf("%s: accepted (argv %v)", name, argv)
		}
	}
	// A malformed document is a parse error, not a pass.
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBench(context.Background(), []string{"-in", garbled, "-compare", base}, io.Discard); err == nil {
		t.Error("garbled document accepted")
	}
}

// TestBenchDocRoundTrip: a freshly benchmarked document survives the
// marshal → unmarshal round trip field for field — the schema the
// committed BENCH_<n>.json baselines and the comparator rely on.
func TestBenchDocRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := runBench(context.Background(), []string{
		"-seeds", "2", "-fast", "-only", "boot,table3", "-o", path,
	}, io.Discard); err != nil {
		t.Fatal(err)
	}
	doc, err := loadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 benchDoc
	if err := json.Unmarshal(again, &doc2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, doc2) {
		t.Errorf("bench document does not round-trip:\n%+v\nvs\n%+v", doc, doc2)
	}
	// The round-tripped document compares clean against itself via the
	// full CLI path.
	if err := runBench(context.Background(), []string{"-in", path, "-compare", path}, io.Discard); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
	// A fresh -only run gated against the full committed baseline checks
	// just the selected scenarios — the 15 unselected ones must not be
	// reported as disappeared.
	if err := runBench(context.Background(), []string{
		"-seeds", "2", "-fast", "-only", "boot", "-compare", "../../BENCH_5.json", "-drift-only",
	}, io.Discard); err != nil {
		t.Errorf("-only run against full baseline failed: %v", err)
	}
	// The committed baseline parses under the same schema.
	baseline, err := loadBenchDoc("../../BENCH_5.json")
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Seeds == 0 || len(baseline.Scenarios) == 0 || baseline.TotalRunsPerSec <= 0 {
		t.Errorf("committed baseline malformed: %+v", baseline)
	}
}
