// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them in paper-like layout, runs parallel
// multi-seed campaigns over any registered scenario, and lists the
// scenario registry.
//
// Usage:
//
//	experiments [-seed N] [-fast] [-only table3,fig5,...]
//	experiments campaigns [-seeds N] [-workers M] [-json] [-fast] [-only boot,table4,...]
//	experiments campaigns -only boot [-param client=chrony] [-checkpoint f.jsonl] [-resume f.jsonl]
//	experiments search -scenario racemargin [-lo -2s -hi 0s -resolution 100ms] [-target 0.5] [-json]
//	experiments search -scenario racemargin -dim vic-net=lan,wan -dim client=ntpd,chrony [-prune-seeds 4] [-lhs N]
//	experiments scenarios [-markdown]
//	experiments serve [-addr HOST:PORT] [-workers M] [-queue N] [-state DIR] [-rate R -burst B] [-pprof]
//	experiments bench [-seeds N] [-fast] [-o BENCH_5.json]
//	experiments bench -compare BENCH_4.json [-in BENCH_5.json] [-tolerance 0.15] [-drift-only]
//
// The default (no subcommand) is the original single-seed paper
// reproduction; -fast skips the slowest experiments (Table II's four full
// run-time attacks and the 2432-server rate-limit scan). The serve
// subcommand keeps the whole machinery resident behind an HTTP API —
// queued campaigns, streamed JSONL results, a content-addressed aggregate
// cache and graceful drain (DESIGN.md §11).
//
// The campaigns subcommand fans each selected scenario out across -seeds
// independent seeds on -workers workers (default GOMAXPROCS) through the campaign
// Engine and prints aggregate statistics; output is identical at any
// worker count. Parameterisable scenarios take `-param key=value`
// overrides (`-client` is shorthand for `-param client=...`); with
// `-checkpoint` the engine records each completed seed so an interrupted
// campaign (SIGINT drains the workers and prints the partial aggregate)
// can be picked up with `-resume`. Network conditions are params too:
// `-param net=<profile>` runs a scenario's labs over a netem path model
// (lan, wan, transcontinental, lossy-wifi, congested — DESIGN.md §8),
// with `-param rtt=...`/`-param loss=...` scalar overrides; `-param
// topo=<preset>` (with `-param atk-net=...`/`-param cli-net=...`
// per-side profiles) positions the attacker on a role-based topology
// instead (DESIGN.md §9). The search subcommand drives campaigns
// adaptively (DESIGN.md §13): by default it bisects a scenario's
// monotone success-vs-parameter axis to its collapse threshold in
// O(log) probe campaigns, and with repeated -dim flags it sweeps a
// parameter grid, pruning cells whose Wilson interval already excludes
// the -target success rate. The scenarios subcommand lists the registry
// (-markdown emits the DESIGN.md §4 experiment index). The bench
// subcommand times every scenario's campaign through the Engine and
// emits a JSON throughput document (CI uploads a fresh artifact per
// push); with -compare it gates against a committed BENCH_<n>.json
// baseline, exiting non-zero on a >15% runs/sec regression or
// headline-metric drift (-in compares an existing document instead of
// re-running).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dnstime"
	"dnstime/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "campaigns" {
		// SIGINT/SIGTERM cancel the engine context: workers drain and the
		// partial aggregate is printed. The signal hook is released as
		// soon as the context cancels, so a second signal gets default
		// handling (hard kill) instead of being swallowed during the
		// drain.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		context.AfterFunc(ctx, stop)
		err := runCampaigns(ctx, os.Args[2:], os.Stdout)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments campaigns:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "search" {
		// Same signal wiring as campaigns: SIGINT/SIGTERM cancel the
		// probe campaigns; with -checkpoint the completed probes are
		// already persisted for -resume.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		context.AfterFunc(ctx, stop)
		err := runSearch(ctx, os.Args[2:], os.Stdout)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments search:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenarios" {
		if err := runScenarios(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments scenarios:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		// SIGINT/SIGTERM trigger the graceful drain: submissions refused,
		// the running campaign checkpointed for resumption, streams
		// terminated with their partial aggregates.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err := runServe(ctx, os.Args[2:], os.Stdout)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := runBench(context.Background(), os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments bench:", err)
			os.Exit(1)
		}
		return
	}
	var seed int64
	var fast bool
	var only string
	if err := experimentsFlagSet(&seed, &fast, &only).Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if err := run(seed, fast, only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// experimentsFlagSet declares the single-seed (no subcommand) flag
// surface. The README command checker parses documented commands against
// the same set.
func experimentsFlagSet(seed *int64, fast *bool, only *string) *flag.FlagSet {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.Int64Var(seed, "seed", 1, "deterministic seed for all experiments")
	fs.BoolVar(fast, "fast", false, "skip the slowest experiments")
	fs.StringVar(only, "only", "", "comma-separated subset: table1,table2,table3,table4,table5,fig5,fig6,fig7,ratelimit,nsfrag,chronos,shared")
	return fs
}

func run(seed int64, fast bool, only string) error {
	want := func(name string) bool {
		if only == "" {
			return true
		}
		for _, w := range strings.Split(only, ",") {
			if strings.TrimSpace(w) == name {
				return true
			}
		}
		return false
	}
	labCfg := dnstime.LabConfig{Seed: seed}

	if want("table1") {
		fmt.Println("== Table I: attack scenarios for popular NTP clients ==")
		rows, err := dnstime.TableI(labCfg)
		if err != nil {
			return err
		}
		t := stats.NewTable("Client", "pool usage %", "boot-time", "run-time")
		for _, r := range rows {
			usage := fmt.Sprintf("%.1f", r.UsagePct)
			if r.UsagePct == 0 {
				usage = "not listed"
			}
			t.AddRow(r.Client, usage, r.BootTime.String(), r.RunTime.String())
		}
		fmt.Println(t)
	}

	if want("table2") && !fast {
		fmt.Println("== Table II: run-time attack duration (paper values in parentheses) ==")
		rows, err := dnstime.TableII(labCfg)
		if err != nil {
			return err
		}
		t := stats.NewTable("Client", "Scenario", "Measured", "Paper")
		for _, r := range rows {
			t.AddRow(r.Client, r.Scenario.String(),
				fmt.Sprintf("%.0f minutes", r.Duration.Minutes()),
				fmt.Sprintf("(%.0f minutes)", r.PaperDuration.Minutes()))
		}
		fmt.Println(t)
	}

	if want("table3") {
		fmt.Println("== Table III: run-time attack success probabilities (p_rate = 38%) ==")
		t := stats.NewTable("m", "n", "P1(n) %", "P2(m,n) %")
		for _, r := range dnstime.TableIII(dnstime.DefaultPRate) {
			t.AddRow(r.M, r.N, r.P1, r.P2)
		}
		fmt.Println(t)
	}

	if want("table4") {
		fmt.Println("== Table IV: pool.ntp.org caching state in open resolvers ==")
		specs := dnstime.GenerateOpenResolvers(dnstime.DefaultOpenResolverConfig(), seed+11)
		res := dnstime.CacheSnoop(specs)
		t := stats.NewTable("Query", "Cached %", "Cached", "Not Cached")
		for _, row := range res.Rows {
			t.AddRow(string(row.Record), row.CachedPct, row.Cached, row.NotCached)
		}
		fmt.Println(t)
		fmt.Printf("probed=%d verified=%d\n\n", res.Probed, res.Verified)

		if want("fig6") {
			fmt.Println("== Figure 6: TTL values of cached NTP pool records ==")
			fmt.Println(res.TTLHistogram().Render(50))
		}
	}

	if want("table5") {
		fmt.Println("== Table V: client resolver study using ads ==")
		clients := dnstime.GenerateAdClients(dnstime.DefaultAdStudyConfig(), seed+9)
		res := dnstime.AdStudy(clients)
		fmt.Print(res.Render())
		fmt.Printf("valid=%d filtered=%d google=%d  DNSSEC validation %.2f%%–%.2f%% (paper: 19.14%%–28.94%%)\n\n",
			res.ValidClients, res.Filtered, res.GoogleClients, res.DNSSECMinPct, res.DNSSECMaxPct)
	}

	if want("fig5") {
		fmt.Println("== Figure 5: CDF of min fragment sizes (1M-domain nameservers, no DNSSEC) ==")
		specs := dnstime.GenerateDomainNameservers(dnstime.DefaultDomainNameserverConfig(), seed+5)
		res := dnstime.FragScan(specs, nil)
		t := stats.NewTable("Min fragment size (bytes)", "cumulative fraction %")
		for _, pt := range res.MinSizes.Points([]float64{68, 292, 548, 1276, 1500}) {
			t.AddRow(int(pt[0]), 100*pt[1])
		}
		fmt.Println(t)
		fmt.Printf("fragmenting without DNSSEC: %.2f%% of domains (paper: 7.66%%)\n\n", res.FragNoDNSSECPct())
	}

	if want("fig7") {
		fmt.Println("== Figure 7: latency difference t_first − t_avg (ms) ==")
		res := dnstime.TimingSideChannel(dnstime.DefaultTimingProbeConfig(), seed+17)
		h := res.Histogram()
		fmt.Println(h.Render(50))
		fmt.Printf("clamped tails: %d below −50 ms, %d above 200 ms\n\n", h.Under(), h.Over())
	}

	if want("ratelimit") {
		cfg := dnstime.DefaultPoolConfig()
		if fast {
			cfg.Servers = 300
		}
		fmt.Printf("== §VII-A: rate limiting of %d pool.ntp.org NTP servers ==\n", cfg.Servers)
		specs := dnstime.GeneratePool(cfg, seed+42)
		res, err := dnstime.RateLimitScan(specs, dnstime.DefaultScanConfig(), seed+42)
		if err != nil {
			return err
		}
		fmt.Printf("KoD senders:      %d (%.0f%%, paper: 33%%)\n", res.KoDSenders, res.KoDPct())
		fmt.Printf("stopped replying: %d (%.0f%%, paper: 38%%)\n\n", res.RateLimited, res.RateLimitedPct())
	}

	if want("nsfrag") {
		fmt.Println("== §VII-B: fragmentation support of pool.ntp.org nameservers ==")
		specs := dnstime.GeneratePoolNameservers(dnstime.DefaultPoolNameserverConfig(), seed+3)
		res := dnstime.FragScan(specs, nil)
		fmt.Printf("%d of %d nameservers fragment below 548 B (paper: 16 of 30); DNSSEC: %d (paper: 0)\n\n",
			res.FragBelow548, res.Total, res.DNSSEC)
	}

	if want("chronos") {
		fmt.Println("== §VI-C: DNS poisoning attack against Chronos ==")
		fmt.Printf("analytic bound: poisoning must land before query N ≤ %d (paper: 11)\n",
			dnstime.ChronosAttackBound(4, 89))
		res, err := dnstime.RunChronosAttack(5, 89, labCfg)
		if err != nil {
			return err
		}
		fmt.Printf("N=%d: pool=%d (evil %d), 2/3 control=%t, clock shifted=%t (offset %v)\n\n",
			res.N, res.PoolSize, res.EvilInPool, res.ControlsPool, res.Shifted, res.ClockOffset)
	}

	if want("shared") {
		fmt.Println("== §VIII-B3: shared DNS resolvers ==")
		res := dnstime.SharedResolverStudy(dnstime.GenerateSharedResolvers(dnstime.DefaultSharedResolverConfig(), seed+21))
		fmt.Printf("web only:      %d (%.1f%%, paper: 86.2%%)\n", res.WebOnly, 100*float64(res.WebOnly)/float64(res.Total))
		fmt.Printf("web + SMTP:    %d (%.1f%%, paper: 11.3%%)\n", res.WebAndSMTP, 100*float64(res.WebAndSMTP)/float64(res.Total))
		fmt.Printf("open:          %d (%.1f%%, paper: 2.3%%)\n", res.OpenOnly, 100*float64(res.OpenOnly)/float64(res.Total))
		fmt.Printf("open + SMTP:   %d (%.1f%%, paper: 0.2%%)\n", res.OpenAndSMTP, 100*float64(res.OpenAndSMTP)/float64(res.Total))
		fmt.Printf("triggerable:   %d (%.1f%%, paper: 13.8%%)\n\n", res.Triggerable(), res.TriggerablePct())
	}
	return nil
}
