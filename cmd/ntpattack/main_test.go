package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// parseArgs runs the real flag set over argv.
func parseArgs(t *testing.T, argv ...string) (attackConfig, error) {
	t.Helper()
	var cfg attackConfig
	fs := attackFlagSet(&cfg)
	fs.SetOutput(io.Discard)
	err := fs.Parse(argv)
	return cfg, err
}

// TestFlagDefaults: a bare invocation parses to the documented defaults
// (boot attack against ntpd at seed 1 on the default lab link).
func TestFlagDefaults(t *testing.T) {
	cfg, err := parseArgs(t)
	if err != nil {
		t.Fatal(err)
	}
	want := attackConfig{mode: "boot", client: "ntpd", scenario: "p1", n: 5, spoofed: 89, seed: 1}
	if cfg != want {
		t.Errorf("defaults = %+v, want %+v", cfg, want)
	}
}

// TestFlagParsing: every documented flag reaches its config field, and
// unknown flags are rejected by the parser.
func TestFlagParsing(t *testing.T) {
	cfg, err := parseArgs(t,
		"-mode", "runtime", "-client", "chrony", "-scenario", "p2",
		"-n", "7", "-spoofed", "45", "-seed", "9", "-topo", "near-attacker")
	if err != nil {
		t.Fatal(err)
	}
	want := attackConfig{mode: "runtime", client: "chrony", scenario: "p2",
		n: 7, spoofed: 45, seed: 9, topo: "near-attacker"}
	if cfg != want {
		t.Errorf("parsed = %+v, want %+v", cfg, want)
	}
	if _, err := parseArgs(t, "-fastmode"); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseArgs(t, "-n", "many"); err == nil {
		t.Error("non-integer -n accepted")
	}
}

// TestRunErrorPaths: run rejects unknown modes, client profiles
// (the ProfileByName error path), run-time scenarios, net profiles,
// topology presets, and the -net/-topo combination — each error naming
// the offending value.
func TestRunErrorPaths(t *testing.T) {
	base := func() attackConfig {
		cfg, err := parseArgs(t)
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	cases := map[string]struct {
		mutate func(*attackConfig)
		want   string
	}{
		"unknown mode":     {func(c *attackConfig) { c.mode = "teardown" }, "teardown"},
		"unknown client":   {func(c *attackConfig) { c.client = "swatch" }, "swatch"},
		"runtime client":   {func(c *attackConfig) { c.mode = "runtime"; c.client = "swatch" }, "swatch"},
		"unknown scenario": {func(c *attackConfig) { c.mode = "runtime"; c.scenario = "p3" }, "p3"},
		"unknown net":      {func(c *attackConfig) { c.net = "dialup" }, "dialup"},
		"unknown topo":     {func(c *attackConfig) { c.topo = "backbone" }, "backbone"},
		"net and topo":     {func(c *attackConfig) { c.net = "wan"; c.topo = "colo" }, "mutually exclusive"},
	}
	for name, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		err := run(cfg, io.Discard)
		if err == nil {
			t.Errorf("%s: accepted (%+v)", name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestRunBootReport: the boot attack runs end to end and reports a
// shifted clock; -topo near-attacker keeps it working from the preset's
// asymmetric position.
func TestRunBootReport(t *testing.T) {
	for _, topo := range []string{"", "near-attacker"} {
		cfg, err := parseArgs(t)
		if err != nil {
			t.Fatal(err)
		}
		cfg.topo = topo
		var out bytes.Buffer
		if err := run(cfg, &out); err != nil {
			t.Fatalf("topo %q: %v", topo, err)
		}
		if !strings.Contains(out.String(), "clock shifted:              true") {
			t.Errorf("topo %q: boot report did not shift:\n%s", topo, out.String())
		}
	}
}

// TestRunChronosReport: the chronos mode reports pool takeover.
func TestRunChronosReport(t *testing.T) {
	cfg, err := parseArgs(t, "-mode", "chronos")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2/3 control:       true") {
		t.Errorf("chronos report:\n%s", out.String())
	}
}
