// Command ntpattack runs one of the paper's attacks in the simulated lab
// and reports the outcome.
//
// Usage:
//
//	ntpattack -mode boot     [-client ntpd]
//	ntpattack -mode runtime  [-client ntpd] [-scenario p1|p2]
//	ntpattack -mode chronos  [-n 5] [-spoofed 89]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dnstime"
)

func main() {
	mode := flag.String("mode", "boot", "attack mode: boot, runtime, chronos")
	clientName := flag.String("client", "ntpd", "client profile: ntpd, chrony, openntpd, ntpdate, android, ntpclient, systemd")
	scenario := flag.String("scenario", "p1", "run-time scenario: p1 (upstreams known) or p2 (RefID discovery)")
	n := flag.Int("n", 5, "chronos: honest hourly queries completed before poisoning")
	spoofed := flag.Int("spoofed", 89, "chronos: addresses in the poisoned response")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()
	if err := run(*mode, *clientName, *scenario, *n, *spoofed, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ntpattack:", err)
		os.Exit(1)
	}
}

func run(mode, clientName, scenario string, n, spoofed int, seed int64) error {
	cfg := dnstime.LabConfig{Seed: seed}
	switch mode {
	case "boot":
		prof, err := dnstime.ProfileByName(clientName)
		if err != nil {
			return err
		}
		res, err := dnstime.RunBootTimeAttack(prof, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("boot-time attack against %s\n", res.Profile)
		fmt.Printf("  cache poisoned before boot: %t\n", res.Poisoned)
		fmt.Printf("  clock shifted:              %t\n", res.Shifted)
		fmt.Printf("  final clock offset:         %v\n", res.ClockOffset)
		fmt.Printf("  time to shift after boot:   %v\n", res.TimeToShift.Round(1e9))
	case "runtime":
		prof, err := dnstime.ProfileByName(clientName)
		if err != nil {
			return err
		}
		sc := dnstime.ScenarioP1
		if strings.EqualFold(scenario, "p2") {
			sc = dnstime.ScenarioP2
		}
		res, err := dnstime.RunRuntimeAttack(prof, sc, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("run-time attack against %s (scenario %s)\n", res.Profile, res.Scenario)
		fmt.Printf("  synced honestly first:   %t\n", res.Synced)
		fmt.Printf("  attack succeeded:        %t\n", res.Succeeded)
		fmt.Printf("  attack duration:         %v\n", res.Duration.Round(1e9))
		fmt.Printf("  run-time DNS lookups:    %d\n", res.DNSLookups)
		fmt.Printf("  final clock offset:      %v\n", res.ClockOffset)
	case "chronos":
		res, err := dnstime.RunChronosAttack(n, spoofed, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("chronos attack: poisoning after N=%d honest queries (bound: %d)\n", res.N, res.Bound)
		fmt.Printf("  final pool:        %d servers, %d attacker-controlled\n", res.PoolSize, res.EvilInPool)
		fmt.Printf("  2/3 control:       %t\n", res.ControlsPool)
		fmt.Printf("  clock shifted:     %t (offset %v)\n", res.Shifted, res.ClockOffset)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
