// Command ntpattack runs one of the paper's attacks in the simulated lab
// and reports the outcome.
//
// Usage:
//
//	ntpattack -mode boot     [-client ntpd] [-net wan] [-topo near-attacker]
//	ntpattack -mode runtime  [-client ntpd] [-scenario p1|p2]
//	ntpattack -mode chronos  [-n 5] [-spoofed 89]
//
// -net runs every lab link over a netem profile (DESIGN.md §8); -topo
// positions the attacker on a role-based topology preset instead
// (DESIGN.md §9). The two are mutually exclusive.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnstime"
)

// attackConfig holds the parsed ntpattack flags.
type attackConfig struct {
	mode     string
	client   string
	scenario string
	n        int
	spoofed  int
	seed     int64
	net      string
	topo     string
}

// attackFlagSet declares the ntpattack flag surface on a fresh FlagSet,
// so tests drive the exact CLI parsing path.
func attackFlagSet(cfg *attackConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("ntpattack", flag.ContinueOnError)
	fs.StringVar(&cfg.mode, "mode", "boot", "attack mode: boot, runtime, chronos")
	fs.StringVar(&cfg.client, "client", "ntpd", "client profile: ntpd, chrony, openntpd, ntpdate, android, ntpclient, systemd")
	fs.StringVar(&cfg.scenario, "scenario", "p1", "run-time scenario: p1 (upstreams known) or p2 (RefID discovery)")
	fs.IntVar(&cfg.n, "n", 5, "chronos: honest hourly queries completed before poisoning")
	fs.IntVar(&cfg.spoofed, "spoofed", 89, "chronos: addresses in the poisoned response")
	fs.Int64Var(&cfg.seed, "seed", 1, "deterministic seed")
	fs.StringVar(&cfg.net, "net", "", "netem profile for every lab link (lan, wan, transcontinental, lossy-wifi, congested)")
	fs.StringVar(&cfg.topo, "topo", "", "role-based topology preset (uniform, near-attacker, far-attacker, colo)")
	return fs
}

func main() {
	var cfg attackConfig
	fs := attackFlagSet(&cfg)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ntpattack:", err)
		os.Exit(1)
	}
}

// labConfig resolves the seed and network flags into a LabConfig.
func (cfg attackConfig) labConfig() (dnstime.LabConfig, error) {
	lab := dnstime.LabConfig{Seed: cfg.seed}
	if cfg.net != "" && cfg.topo != "" {
		return lab, fmt.Errorf("-net and -topo are mutually exclusive")
	}
	if cfg.net != "" {
		path, err := dnstime.NetProfile(cfg.net)
		if err != nil {
			return lab, err
		}
		lab.Path = path
	}
	if cfg.topo != "" {
		topo, err := dnstime.NetTopologyPreset(cfg.topo)
		if err != nil {
			return lab, err
		}
		lab.Topology = topo
	}
	return lab, nil
}

// run executes one attack and prints its report to w.
func run(cfg attackConfig, w io.Writer) error {
	lab, err := cfg.labConfig()
	if err != nil {
		return err
	}
	switch cfg.mode {
	case "boot":
		prof, err := dnstime.ProfileByName(cfg.client)
		if err != nil {
			return err
		}
		res, err := dnstime.RunBootTimeAttack(prof, lab)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "boot-time attack against %s\n", res.Profile)
		fmt.Fprintf(w, "  cache poisoned before boot: %t\n", res.Poisoned)
		fmt.Fprintf(w, "  clock shifted:              %t\n", res.Shifted)
		fmt.Fprintf(w, "  final clock offset:         %v\n", res.ClockOffset)
		fmt.Fprintf(w, "  time to shift after boot:   %v\n", res.TimeToShift.Round(1e9))
	case "runtime":
		prof, err := dnstime.ProfileByName(cfg.client)
		if err != nil {
			return err
		}
		sc := dnstime.ScenarioP1
		switch {
		case strings.EqualFold(cfg.scenario, "p1"):
		case strings.EqualFold(cfg.scenario, "p2"):
			sc = dnstime.ScenarioP2
		default:
			return fmt.Errorf("unknown run-time scenario %q (want p1 or p2)", cfg.scenario)
		}
		res, err := dnstime.RunRuntimeAttack(prof, sc, lab)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "run-time attack against %s (scenario %s)\n", res.Profile, res.Scenario)
		fmt.Fprintf(w, "  synced honestly first:   %t\n", res.Synced)
		fmt.Fprintf(w, "  attack succeeded:        %t\n", res.Succeeded)
		fmt.Fprintf(w, "  attack duration:         %v\n", res.Duration.Round(1e9))
		fmt.Fprintf(w, "  run-time DNS lookups:    %d\n", res.DNSLookups)
		fmt.Fprintf(w, "  final clock offset:      %v\n", res.ClockOffset)
	case "chronos":
		res, err := dnstime.RunChronosAttack(cfg.n, cfg.spoofed, lab)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "chronos attack: poisoning after N=%d honest queries (bound: %d)\n", res.N, res.Bound)
		fmt.Fprintf(w, "  final pool:        %d servers, %d attacker-controlled\n", res.PoolSize, res.EvilInPool)
		fmt.Fprintf(w, "  2/3 control:       %t\n", res.ControlsPool)
		fmt.Fprintf(w, "  clock shifted:     %t (offset %v)\n", res.Shifted, res.ClockOffset)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	return nil
}
